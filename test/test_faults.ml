(* Tests for the Faultline fault-injection subsystem and the TM runtime's
   progress watchdog: plan parsing/merging, bit-exact determinism, the
   none-plan identity, correctness under every injection site, the
   forced-serial escalation, and the livelock diagnosis. *)

module Addr = Asf_mem.Addr
module Abort = Asf_core.Abort
module Variant = Asf_core.Variant
module Stats = Asf_tm_rt.Stats
module Tm = Asf_tm_rt.Tm
module Faults = Asf_faults.Faults

(* ------------------------------------------------------------------ *)
(* Plans                                                                *)
(* ------------------------------------------------------------------ *)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_plan_parsing () =
  (match Faults.plan_of_spec "none" with
  | Ok p -> Alcotest.(check bool) "none is none" true (Faults.plan_is_none p)
  | Error m -> Alcotest.fail m);
  (match Faults.plan_of_spec " jitter , capacity " with
  | Ok p ->
      Alcotest.(check bool) "merge not none" false (Faults.plan_is_none p);
      Alcotest.(check string) "merged name" "jitter+capacity" p.Faults.pname;
      Alcotest.(check bool) "jitter kept" true (p.Faults.jitter_bp > 0);
      Alcotest.(check bool) "capacity kept" true (p.Faults.capacity_bp > 0)
  | Error m -> Alcotest.fail m);
  match Faults.plan_of_spec "storm,nonsense" with
  | Ok _ -> Alcotest.fail "unknown plan accepted"
  | Error m ->
      Alcotest.(check bool) "error names the unknown plan" true
        (contains_sub m "nonsense")

let test_plan_typo_suggestion () =
  (match Faults.plan_of_spec "stom" with
  | Ok _ -> Alcotest.fail "typo accepted"
  | Error m ->
      Alcotest.(check bool) "suggests the close plan" true
        (contains_sub m "did you mean \"storm\"");
      Alcotest.(check bool) "still lists valid plans" true
        (contains_sub m "valid:"));
  (match Faults.plan_of_spec "PAGEFAULT" with
  | Ok _ -> Alcotest.fail "typo accepted"
  | Error m ->
      Alcotest.(check bool) "case-folded suggestion" true
        (contains_sub m "did you mean \"pagefaults\""));
  match Faults.plan_of_spec "zzzzzzzz" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error m ->
      Alcotest.(check bool) "no far-fetched suggestion" false
        (contains_sub m "did you mean")

let test_plan_merge_is_fieldwise_max () =
  (* Merging is the field-wise max of rates and the or of flags, so a
     merged plan is at least as hostile as each constituent. *)
  match (Faults.plan_of_spec "capacity,stall,livelock", Faults.plan_of_spec "capacity") with
  | Ok p, Ok cap ->
      Alcotest.(check int) "capacity rate kept" cap.Faults.capacity_bp p.Faults.capacity_bp;
      Alcotest.(check int) "capacity lines kept" cap.Faults.capacity_lines
        p.Faults.capacity_lines;
      Alcotest.(check bool) "stall rate kept" true (p.Faults.serial_stall_bp > 0);
      Alcotest.(check bool) "spurious rate kept" true (p.Faults.spurious_bp > 0);
      Alcotest.(check bool) "hang flag propagates" true p.Faults.serial_hang
  | Error m, _ | _, Error m -> Alcotest.fail m

(* ------------------------------------------------------------------ *)
(* Workload harness                                                     *)
(* ------------------------------------------------------------------ *)

(* A contended 4-core counter plus a 12-line array walk: exercises
   contention, capacity pressure (under throttles), page-table traffic,
   and the serial path, while staying value-checkable. *)
let run_workload ?(tweak = fun c -> c) ?(n_cores = 4) ?(per_core = 120) () =
  let sys =
    Tm.create (tweak (Tm.default_config (Tm.Asf_mode Variant.llb256) ~n_cores))
  in
  let counter = Tm.setup_alloc sys 1 in
  let arr = Tm.setup_alloc sys (12 * Addr.words_per_line) in
  Tm.setup_poke sys counter 0;
  let ctxs =
    List.init n_cores (fun core ->
        Tm.spawn sys ~core (fun ctx ->
            for _ = 1 to per_core do
              Tm.atomic ctx (fun () ->
                  let v = Tm.load ctx counter in
                  for i = 0 to 11 do
                    let a = arr + (i * Addr.words_per_line) in
                    Tm.store ctx a (Tm.load ctx a + 1)
                  done;
                  Tm.store ctx counter (v + 1))
            done))
  in
  Tm.run sys;
  let agg = Stats.create () in
  List.iter (fun c -> Stats.add (Tm.stats c) ~into:agg) ctxs;
  (sys, agg, Tm.setup_peek sys counter)

let with_plan plan ~seed f =
  let fl = Faults.create ~seed plan in
  Faults.install fl;
  Fun.protect ~finally:Faults.uninstall (fun () -> f fl)

let plan_of name =
  match Faults.plan_of_spec name with Ok p -> p | Error m -> Alcotest.fail m

(* ------------------------------------------------------------------ *)
(* Determinism                                                          *)
(* ------------------------------------------------------------------ *)

let fingerprint (sys, agg, value) =
  ( value,
    Tm.makespan sys,
    Stats.commits agg,
    Stats.serial_commits agg,
    Stats.attempts agg,
    Array.to_list (Stats.aborts agg) )

let test_same_seed_reproduces () =
  let once () =
    with_plan (plan_of "storm") ~seed:7 (fun fl ->
        let r = fingerprint (run_workload ()) in
        (r, Faults.counts fl))
  in
  let r1, c1 = once () in
  let r2, c2 = once () in
  Alcotest.(check bool) "stats and makespan bit-identical" true (r1 = r2);
  Alcotest.(check bool) "injection counts bit-identical" true (c1 = c2)

let test_different_seed_differs () =
  let once seed =
    with_plan (plan_of "storm") ~seed (fun _ -> fingerprint (run_workload ()))
  in
  (* Different injection seed, same workload seed: the perturbation (and
     with it the makespan) must change, while correctness holds. *)
  let (v1, m1, _, _, _, _) = once 7 and (v2, m2, _, _, _, _) = once 8 in
  Alcotest.(check int) "both correct" v1 v2;
  Alcotest.(check bool) "perturbation differs" true (m1 <> m2)

let test_zero_rate_plan_is_identity () =
  (* An *installed* injector whose plan has all-zero rates must be
     bit-identical to no injector at all: zero-rate sites never draw. *)
  let bare = fingerprint (run_workload ()) in
  let zero =
    with_plan Faults.none ~seed:7 (fun fl ->
        let r = fingerprint (run_workload ()) in
        Alcotest.(check int) "no injections" 0 (Faults.total fl);
        r)
  in
  Alcotest.(check bool) "bit-identical" true (bare = zero)

(* ------------------------------------------------------------------ *)
(* Correctness and progress under every plan                            *)
(* ------------------------------------------------------------------ *)

let test_plans_preserve_correctness () =
  let n_cores = 4 and per_core = 120 in
  List.iter
    (fun name ->
      with_plan (plan_of name) ~seed:7 (fun fl ->
          let sys, agg, value = run_workload ~n_cores ~per_core () in
          Alcotest.(check int) (name ^ ": counter exact") (n_cores * per_core) value;
          Alcotest.(check int)
            (name ^ ": every txn committed")
            (n_cores * per_core) (Stats.commits agg);
          Alcotest.(check int)
            (name ^ ": system-wide commit count agrees")
            (n_cores * per_core) (Tm.total_commits sys);
          if name <> "none" then
            Alcotest.(check bool) (name ^ ": injected something") true
              (Faults.total fl > 0)))
    [ "none"; "jitter"; "pagefaults"; "spurious"; "capacity"; "stall"; "storm" ]

let test_spurious_aborts_are_retried () =
  with_plan (plan_of "spurious") ~seed:3 (fun _ ->
      let _, agg, value = run_workload () in
      Alcotest.(check int) "correct" 480 value;
      Alcotest.(check bool) "spurious aborts delivered" true
        ((Stats.aborts agg).(Abort.index Abort.Spurious) >= 1))

let test_pagefaults_plan_injects_faults () =
  with_plan (plan_of "pagefaults") ~seed:3 (fun fl ->
      let _, _, value = run_workload () in
      Alcotest.(check int) "correct" 480 value;
      let hits = Faults.counts fl in
      Alcotest.(check bool) "page unmaps happened" true
        (List.assoc "page-unmap" hits > 0);
      Alcotest.(check bool) "tlb flushes happened" true
        (List.assoc "tlb-flush" hits > 0))

(* ------------------------------------------------------------------ *)
(* Graceful degradation                                                 *)
(* ------------------------------------------------------------------ *)

let test_forced_serial_escalation () =
  (* Unmapping on (almost) every access produces endless page-fault abort
     loops that never charge the retry budget; the consecutive-abort
     escalation must force such transactions onto the serial path, where
     faults are OS-serviced and the run completes correctly. *)
  let always_unmap =
    { Faults.none with Faults.pname = "always-unmap"; page_unmap_bp = 6_000 }
  in
  with_plan always_unmap ~seed:5 (fun _ ->
      let tweak c = { c with Tm.watchdog_abort_limit = 8 } in
      let n_cores = 2 and per_core = 8 in
      let sys, agg, value = run_workload ~tweak ~n_cores ~per_core () in
      Alcotest.(check int) "correct under permanent unmapping" (n_cores * per_core)
        value;
      Alcotest.(check int) "all committed" (n_cores * per_core) (Stats.commits agg);
      Alcotest.(check bool) "escalation fired" true (Tm.forced_serial_count sys > 0))

let test_livelock_watchdog_fires () =
  (* The negative fixture: permanent spurious aborts push every
     transaction to the serial path, whose holder then hangs. The only
     way out is the zero-commit-throughput watchdog. *)
  with_plan (plan_of "livelock") ~seed:1 (fun _ ->
      let tweak c = { c with Tm.watchdog_window = 300_000 } in
      let sys =
        Tm.create (tweak (Tm.default_config (Tm.Asf_mode Variant.llb256) ~n_cores:2))
      in
      let counter = Tm.setup_alloc sys 1 in
      for core = 0 to 1 do
        ignore
          (Tm.spawn sys ~core (fun ctx ->
               for _ = 1 to 10 do
                 Tm.atomic ctx (fun () ->
                     Tm.store ctx counter (Tm.load ctx counter + 1))
               done))
      done;
      match Tm.run sys with
      | () -> Alcotest.fail "livelock plan completed; watchdog never fired"
      | exception Tm.Livelock d ->
          Alcotest.(check int) "zero commits" 0 d.Tm.diag_commits;
          Alcotest.(check bool) "window respected" true
            (d.Tm.diag_cycle - d.Tm.diag_last_commit_cycle > d.Tm.diag_window);
          Alcotest.(check bool) "serial holder identified" true
            (d.Tm.diag_serial_holder <> None);
          Alcotest.(check int) "all contexts reported" 2
            (List.length d.Tm.diag_cores);
          Alcotest.(check bool) "consecutive aborts recorded" true
            (List.exists (fun r -> r.Tm.rep_consec_aborts > 0) d.Tm.diag_cores))

let test_watchdog_quiet_on_healthy_runs () =
  (* A healthy run must never trip the watchdog even with a small window
     (commits continually advance [last_commit_cycle]), and at the default
     abort limit ordinary contention never escalates to forced serial. *)
  let tweak c = { c with Tm.watchdog_window = 100_000 } in
  let sys, agg, value = run_workload ~tweak () in
  Alcotest.(check int) "correct" 480 value;
  Alcotest.(check int) "all committed" 480 (Stats.commits agg);
  Alcotest.(check int) "no forced serial" 0 (Tm.forced_serial_count sys)

let () =
  Alcotest.run "faults"
    [
      ( "plans",
        [
          Alcotest.test_case "parsing" `Quick test_plan_parsing;
          Alcotest.test_case "merge is field-wise max" `Quick
            test_plan_merge_is_fieldwise_max;
          Alcotest.test_case "typo suggestion" `Quick test_plan_typo_suggestion;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed reproduces" `Quick test_same_seed_reproduces;
          Alcotest.test_case "different seed differs" `Quick test_different_seed_differs;
          Alcotest.test_case "zero-rate identity" `Quick test_zero_rate_plan_is_identity;
        ] );
      ( "correctness",
        [
          Alcotest.test_case "all plans" `Quick test_plans_preserve_correctness;
          Alcotest.test_case "spurious retried" `Quick test_spurious_aborts_are_retried;
          Alcotest.test_case "pagefaults injected" `Quick
            test_pagefaults_plan_injects_faults;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "forced serial" `Quick test_forced_serial_escalation;
          Alcotest.test_case "livelock diagnosis" `Quick test_livelock_watchdog_fires;
          Alcotest.test_case "quiet when healthy" `Quick
            test_watchdog_quiet_on_healthy_runs;
        ] );
    ]
