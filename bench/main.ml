(* The full benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation,
   each twice — sequentially ([--jobs 1]) and on the domain pool — with
   the memoisation cache cleared before every timed run so both
   measurements do the same cold-cache work. It prints the tables, writes
   results/<id>.csv (write failures are fatal), verifies that the
   parallel reports are identical to the sequential ones, and emits
   BENCH_asf.json with per-experiment host seconds and simulated
   cycles/second for both paths.

   Part 2 is the Bechamel suite: one [Test.make] per table/figure, each
   timing the host-side cost of regenerating that artifact (at the quick
   configuration, with the memoisation cache cleared per run so every
   sample does real work). Skipped with --skip-bechamel.

     main.exe [--quick] [--seed N] [--jobs N] [--out FILE]
              [--csv DIR] [--skip-bechamel] *)

module Experiments = Asf_harness.Experiments
module Report = Asf_harness.Report
module Parallel = Asf_parallel.Parallel
module Serve = Asf_serve.Serve
module Txlin = Asf_txlin.Txlin
module Tm = Asf_tm_rt.Tm
module Variant = Asf_core.Variant
module Params = Asf_machine.Params
open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* CLI                                                                  *)
(* ------------------------------------------------------------------ *)

let quick = ref false

let seed = ref 1

let jobs = ref 0 (* 0 = auto *)

let out_file = ref "BENCH_asf.json"

let csv_dir = ref "results"

let skip_bechamel = ref false

let only = ref ""

(* 0.0 = no gate. On a multi-core host the gate is literal: the parallel
   pass's totals speedup must reach the floor. On a single-core host
   (Parallel.available () = 1, e.g. CI containers) a parallel win is
   physically impossible, so the gate degrades to an overhead bound: the
   pool may not be worse than min(floor, 0.65) — chunked claiming plus
   the join must stay cheap even when domains only timeslice. The 0.65
   allows for the multicore GC tax and the +/-15% single-shot timing
   noise observed on shared single-core CI hosts while still failing a
   pool that burns half its host time on coordination. *)
let min_speedup = ref 0.0

(* 0.0 = no gate. An allocation budget over the sequential pass of the
   selected experiments — the @perf-smoke regression fence for the
   access-path allocation hunts (PR 5 landed 45M minor words/run on the
   8-core quick suite; the budget is set with headroom above the
   current measurement, not at it). *)
let max_minor_words = ref 0.0

let () =
  Arg.parse
    [
      ("--quick", Arg.Set quick, " Scaled-down experiment configurations");
      ("--seed", Arg.Set_int seed, "N Deterministic seed (default 1)");
      ( "--jobs",
        Arg.Set_int jobs,
        "N Domains for the parallel pass (default: recommended count)" );
      ( "--out",
        Arg.Set_string out_file,
        "FILE Benchmark JSON output (default BENCH_asf.json)" );
      ("--csv", Arg.Set_string csv_dir, "DIR CSV output directory (default results)");
      ("--skip-bechamel", Arg.Set skip_bechamel, " Skip the Bechamel suite");
      ( "--only",
        Arg.Set_string only,
        "IDS Comma-separated experiment ids to run (default: all)" );
      ( "--min-speedup",
        Arg.Set_float min_speedup,
        "X Fail unless the parallel pass's totals speedup reaches X \
         (single-core hosts: min(X, 0.65) as an overhead bound)" );
      ( "--max-minor-words",
        Arg.Set_float max_minor_words,
        "N Fail if the sequential pass allocates more than N minor words \
         across the selected experiments (0 = no gate)" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "main.exe [--quick] [--seed N] [--jobs N] [--out FILE] [--csv DIR] \
     [--skip-bechamel] [--only IDS] [--min-speedup X] [--max-minor-words N]"

(* Resolve --only against the experiment registry; an unknown id is a
   usage error, not a silently empty run. *)
let selected_experiments () =
  if !only = "" then Experiments.all
  else begin
    let ids = String.split_on_char ',' !only |> List.filter (fun s -> s <> "") in
    let known = List.map (fun e -> e.Experiments.id) Experiments.all in
    List.iter
      (fun id ->
        if not (List.mem id known) then begin
          Printf.eprintf "bench: unknown experiment id %S (known: %s)\n%!" id
            (String.concat ", " known);
          exit 2
        end)
      ids;
    List.filter (fun e -> List.mem e.Experiments.id ids) Experiments.all
  end

(* ------------------------------------------------------------------ *)
(* Part 1: regenerate + time                                            *)
(* ------------------------------------------------------------------ *)

type timing = {
  id : string;
  seq_seconds : float;
  par_seconds : float;
  sim_cycles : int;
  fused : int;  (** elapses served by the fusion fast path (seq pass) *)
  scheduled : int;  (** elapses that went through the heap (seq pass) *)
  minor_words : float;  (** GC minor words allocated by the seq pass *)
  major_words : float;
  inval : int;  (** coherence counters, seq pass (per-experiment deltas) *)
  fwd : int;
  cross : int;
  coh_probes : int;
  dir_hw : int;  (** directory occupancy high-water across the pass *)
  deterministic : bool;
}

let fused_ratio t =
  let total = t.fused + t.scheduled in
  if total = 0 then 0.0 else float_of_int t.fused /. float_of_int total

(* One timed cold-cache regeneration at the given pool width. *)
let timed_run e ~jobs =
  Experiments.clear_cache ();
  Parallel.set_jobs jobs;
  Parallel.reset_sim_cycles ();
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let reports = e.Experiments.run ~quick:!quick ~seed:!seed in
  let dt = Unix.gettimeofday () -. t0 in
  let g1 = Gc.quick_stat () in
  ( reports,
    dt,
    Parallel.sim_cycles (),
    Parallel.fused_scheduled (),
    (g1.Gc.minor_words -. g0.Gc.minor_words,
     g1.Gc.major_words -. g0.Gc.major_words),
    Parallel.coherence () )

let part1 () =
  print_endline "=============================================================";
  print_endline " Part 1: reproduction of every table and figure, timed";
  print_endline "=============================================================";
  let par_jobs =
    if !jobs > 0 then !jobs else Parallel.available ()
  in
  Printf.printf "quick=%b seed=%d jobs=%d (host recommends %d)\n%!" !quick !seed
    par_jobs
    (Parallel.available ());
  let failures = ref [] in
  let timings =
    List.map
      (fun e ->
        let id = e.Experiments.id in
        let ( seq_reports,
              seq_seconds,
              seq_cycles,
              (fused, scheduled),
              (minor_words, major_words),
              (inval, fwd, cross, coh_probes, dir_hw) ) =
          timed_run e ~jobs:1
        in
        let par_reports, par_seconds, par_cycles, _, _, _ =
          timed_run e ~jobs:par_jobs
        in
        let deterministic =
          seq_reports = par_reports && seq_cycles = par_cycles
        in
        if not deterministic then
          failures :=
            Printf.sprintf "%s: parallel output differs from sequential" id
            :: !failures;
        List.iter
          (fun r ->
            Report.print r;
            match Report.save_csv ~dir:!csv_dir r with
            | path -> Printf.printf "csv: %s\n" path
            | exception Sys_error m ->
                failures := Printf.sprintf "%s: csv write failed: %s" id m :: !failures;
                Printf.eprintf "ERROR: cannot write %s/%s.csv: %s\n%!" !csv_dir
                  r.Report.id m)
          par_reports;
        let t =
          {
            id;
            seq_seconds;
            par_seconds;
            sim_cycles = seq_cycles;
            fused;
            scheduled;
            minor_words;
            major_words;
            inval;
            fwd;
            cross;
            coh_probes;
            dir_hw;
            deterministic;
          }
        in
        Printf.printf
          "[%s seq %.1fs (%.0f cyc/s), jobs=%d %.1fs (x%.2f), %d sim cycles, \
           fused %.1f%%, %s]\n%!"
          id seq_seconds
          (float_of_int seq_cycles /. Float.max 1e-9 seq_seconds)
          par_jobs par_seconds
          (seq_seconds /. Float.max 1e-9 par_seconds)
          seq_cycles
          (100.0 *. fused_ratio t)
          (if deterministic then "bit-identical" else "MISMATCH");
        (* One machine-greppable allocation/coherence line per experiment;
           scripts/allocprof.sh turns these into CSV. *)
        Printf.printf
          "[alloc %s minor_words=%.0f major_words=%.0f invalidations=%d \
           forwards=%d cross_socket_probes=%d probes=%d dir_high_water=%d]\n%!"
          id minor_words major_words inval fwd cross coh_probes dir_hw;
        t)
      (selected_experiments ())
  in
  (timings, par_jobs, !failures)

(* ------------------------------------------------------------------ *)
(* Serve metrics                                                        *)
(* ------------------------------------------------------------------ *)

(* One pinned overload scenario (kv-e at 2.5x measured capacity, tight
   deadlines, small queues) whose robustness censuses are embedded in
   BENCH_asf.json, so a regression in shedding, deadline enforcement or
   the governor shows up as a diff in the artifact rather than only as a
   slower run. Purely seed-determined. *)
let serve_scenario () =
  let threads = 4 in
  let tm =
    {
      (Tm.default_config (Tm.Asf_mode Variant.llb256) ~n_cores:threads) with
      Tm.seed = !seed;
    }
  in
  let deadline =
    int_of_float (4.0 *. tm.Tm.params.Params.ghz *. 1000.)
  in
  let base =
    {
      (Serve.default_cfg (Serve.Kv Serve.E)) with
      Serve.requests = (if !quick then 400 else 1500);
      queue_cap = 8;
      deadline = Some deadline;
      record = true;
    }
  in
  let capacity = Serve.measure_capacity tm ~threads base in
  let cycles_per_ms = 1.0 /. Params.cycles_to_ms tm.Tm.params 1 in
  let mean_gap =
    max 1 (int_of_float (cycles_per_ms /. Float.max 1e-9 (capacity *. 2.5)))
  in
  let cfg = { base with Serve.arrival = Serve.Poisson { mean_gap } } in
  let r = Serve.run tm ~threads cfg in
  (r, Txlin.check_result cfg r)

let json_of_serve ((r : Serve.result), (v : Txlin.verdict)) =
  Printf.sprintf
    "  \"serve\": {\"service\": %S, \"arrivals\": %d, \"completed\": %d, \
     \"shed\": %d, \"timeout\": %d, \"late\": %d, \"retries\": %d, \
     \"timeout_aborts\": %d, \"max_depth\": %d, \"p50\": %d, \"p99\": %d, \
     \"p999\": %d, \"offered_req_ms\": %.3f, \"achieved_req_ms\": %.3f, \
     \"gov_final\": %S, \"gov_to_shed\": %d, \"gov_to_serial\": %d, \
     \"gov_recovered\": %d, \"invariant_ok\": %b, \"partition_ok\": %b, \
     \"lin_ok\": %b, \"lin_states\": %d},\n"
    r.Serve.r_service r.Serve.r_arrivals r.Serve.r_completed r.Serve.r_shed
    r.Serve.r_timeout r.Serve.r_late r.Serve.r_retries r.Serve.r_timeout_aborts
    r.Serve.r_max_depth r.Serve.r_p50 r.Serve.r_p99 r.Serve.r_p999
    r.Serve.r_offered r.Serve.r_achieved r.Serve.r_final_gov
    r.Serve.r_gov_to_shed r.Serve.r_gov_to_serial r.Serve.r_gov_recovered
    r.Serve.r_invariant_ok r.Serve.r_partition_ok v.Txlin.v_ok v.Txlin.v_states

(* ------------------------------------------------------------------ *)
(* BENCH_asf.json                                                       *)
(* ------------------------------------------------------------------ *)

let json_of_timings timings ~par_jobs ~serve =
  let buf = Buffer.create 4096 in
  let total f = List.fold_left (fun acc t -> acc +. f t) 0.0 timings in
  let seq_total = total (fun t -> t.seq_seconds) in
  let par_total = total (fun t -> t.par_seconds) in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"asf-bench/1\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"quick\": %b,\n" !quick);
  Buffer.add_string buf (Printf.sprintf "  \"seed\": %d,\n" !seed);
  Buffer.add_string buf (Printf.sprintf "  \"jobs\": %d,\n" par_jobs);
  Buffer.add_string buf
    (Printf.sprintf "  \"recommended_domains\": %d,\n" (Parallel.available ()));
  Buffer.add_string buf "  \"experiments\": [\n";
  List.iteri
    (fun i t ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"id\": %S, \"seq_seconds\": %.3f, \"par_seconds\": %.3f, \
            \"speedup\": %.3f, \"sim_cycles\": %d, \"seq_cycles_per_sec\": \
            %.0f, \"par_cycles_per_sec\": %.0f, \"fused_elapses\": %d, \
            \"scheduled_elapses\": %d, \"fused_ratio\": %.4f, \
            \"minor_words\": %.0f, \"major_words\": %.0f, \
            \"invalidations\": %d, \"forwards\": %d, \
            \"cross_socket_probes\": %d, \"dir_high_water\": %d, \
            \"deterministic\": %b}%s\n"
           t.id t.seq_seconds t.par_seconds
           (t.seq_seconds /. Float.max 1e-9 t.par_seconds)
           t.sim_cycles
           (float_of_int t.sim_cycles /. Float.max 1e-9 t.seq_seconds)
           (float_of_int t.sim_cycles /. Float.max 1e-9 t.par_seconds)
           t.fused t.scheduled (fused_ratio t) t.minor_words t.major_words
           t.inval t.fwd t.cross t.dir_hw t.deterministic
           (if i = List.length timings - 1 then "" else ",")))
    timings;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf (json_of_serve serve);
  (* The big-topology block: coherence traffic and throughput of the
     64c4s scale experiment when it was part of the selected set. Always
     emitted (with "ran": false otherwise) so validation is
     unconditional. *)
  (match List.find_opt (fun t -> t.id = "scale") timings with
  | Some t ->
      Buffer.add_string buf
        (Printf.sprintf
           "  \"scale\": {\"ran\": true, \"sim_cycles\": %d, \
            \"seq_cycles_per_sec\": %.0f, \"invalidations\": %d, \
            \"forwards\": %d, \"cross_socket_probes\": %d, \"probes\": %d, \
            \"dir_high_water\": %d, \"minor_words\": %.0f},\n"
           t.sim_cycles
           (float_of_int t.sim_cycles /. Float.max 1e-9 t.seq_seconds)
           t.inval t.fwd t.cross t.coh_probes t.dir_hw t.minor_words)
  | None ->
      Buffer.add_string buf
        "  \"scale\": {\"ran\": false, \"sim_cycles\": 0, \
         \"seq_cycles_per_sec\": 0, \"invalidations\": 0, \"forwards\": 0, \
         \"cross_socket_probes\": 0, \"probes\": 0, \"dir_high_water\": 0, \
         \"minor_words\": 0},\n");
  Buffer.add_string buf
    (Printf.sprintf
       "  \"totals\": {\"seq_seconds\": %.3f, \"par_seconds\": %.3f, \
        \"speedup\": %.3f, \"minor_words\": %.0f}\n"
       seq_total par_total
       (seq_total /. Float.max 1e-9 par_total)
       (total (fun t -> t.minor_words)));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* Minimal well-formedness check of the emitted JSON: brackets and braces
   balance outside strings, strings terminate, and the required keys are
   present — enough to catch an interrupted or garbled write without a
   JSON library. *)
let validate_json s =
  let n = String.length s in
  let rec scan i depth in_str =
    if i >= n then if depth = 0 && not in_str then Ok () else Error "unbalanced"
    else
      let c = s.[i] in
      if in_str then
        if c = '\\' then scan (i + 2) depth true
        else scan (i + 1) depth (c <> '"')
      else
        match c with
        | '"' -> scan (i + 1) depth true
        | '{' | '[' -> scan (i + 1) (depth + 1) false
        | '}' | ']' ->
            if depth = 0 then Error "unbalanced" else scan (i + 1) (depth - 1) false
        | _ -> scan (i + 1) depth false
  in
  match scan 0 0 false with
  | Error m -> Error m
  | Ok () ->
      let has key =
        let key = "\"" ^ key ^ "\"" in
        let k = String.length key in
        let rec at i =
          i + k <= n && (String.sub s i k = key || at (i + 1))
        in
        at 0
      in
      let missing =
        List.filter
          (fun k -> not (has k))
          [
            "schema"; "quick"; "seed"; "jobs"; "recommended_domains";
            "experiments"; "totals"; "seq_seconds"; "par_seconds"; "speedup";
            "sim_cycles"; "seq_cycles_per_sec"; "par_cycles_per_sec";
            "fused_elapses"; "scheduled_elapses"; "fused_ratio";
            "deterministic"; "serve"; "arrivals"; "completed"; "shed";
            "timeout"; "timeout_aborts"; "max_depth"; "p50"; "p99";
            "offered_req_ms"; "achieved_req_ms"; "gov_final"; "invariant_ok";
            "partition_ok"; "lin_ok"; "lin_states"; "minor_words";
            "major_words"; "invalidations"; "forwards"; "cross_socket_probes";
            "dir_high_water"; "scale"; "ran"; "probes";
          ]
      in
      if missing = [] then Ok ()
      else Error ("missing keys: " ^ String.concat ", " missing)

let write_bench_json timings ~par_jobs ~serve =
  let json = json_of_timings timings ~par_jobs ~serve in
  match
    let oc = open_out !out_file in
    output_string oc json;
    close_out oc
  with
  | exception Sys_error m ->
      Printf.eprintf "ERROR: cannot write %s: %s\n%!" !out_file m;
      [ Printf.sprintf "benchmark json write failed: %s" m ]
  | () -> (
      (* Re-read and validate what actually landed on disk. *)
      let ic = open_in_bin !out_file in
      let len = in_channel_length ic in
      let written = really_input_string ic len in
      close_in ic;
      match validate_json written with
      | Ok () ->
          Printf.printf "benchmark json: %s (%d bytes, validated)\n%!" !out_file
            len;
          []
      | Error m ->
          Printf.eprintf "ERROR: %s failed validation: %s\n%!" !out_file m;
          [ Printf.sprintf "benchmark json invalid: %s" m ])

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel                                                     *)
(* ------------------------------------------------------------------ *)

let bechamel_tests =
  let test_of e =
    Test.make ~name:e.Experiments.id
      (Staged.stage (fun () ->
           Experiments.clear_cache ();
           ignore (e.Experiments.run ~quick:true ~seed:!seed)))
  in
  Test.make_grouped ~name:"regen" (List.map test_of (selected_experiments ()))

let part2 () =
  print_endline "";
  print_endline "=============================================================";
  print_endline " Part 2: Bechamel — host cost per artifact (quick configs)";
  print_endline "=============================================================";
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:3 ~quota:(Time.second 1.0) ~stabilize:false ~kde:None ()
  in
  let raw = Benchmark.all cfg instances bechamel_tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  Printf.printf "%-24s %14s %10s\n" "benchmark" "ms/run" "r^2";
  List.iter
    (fun (name, v) ->
      let est =
        match Analyze.OLS.estimates v with Some (e :: _) -> e /. 1e6 | _ -> nan
      in
      let r2 = match Analyze.OLS.r_square v with Some r -> r | None -> nan in
      Printf.printf "%-24s %14.2f %10s\n" name est (if Float.is_nan r2 then "-" else Printf.sprintf "%.3f" r2))
    rows

(* The --min-speedup gate over part 1's totals (see the flag comment). *)
let speedup_gate timings =
  if !min_speedup <= 0.0 || timings = [] then []
  else begin
    let total f = List.fold_left (fun acc t -> acc +. f t) 0.0 timings in
    let speedup =
      total (fun t -> t.seq_seconds)
      /. Float.max 1e-9 (total (fun t -> t.par_seconds))
    in
    let multicore = Parallel.available () >= 2 in
    let floor =
      if multicore then !min_speedup else Float.min !min_speedup 0.65
    in
    Printf.printf "speedup gate: totals x%.3f, floor x%.2f (%s host)\n%!"
      speedup floor
      (if multicore then "multi-core" else "single-core");
    if speedup >= floor then []
    else
      [
        Printf.sprintf
          "totals speedup x%.3f below the --min-speedup floor x%.2f%s" speedup
          floor
          (if multicore then ""
           else " (single-core host: pool-overhead bound)");
      ]
  end

(* The --max-minor-words gate: total sequential-pass minor allocation of
   the selected experiments against the budget. *)
let alloc_gate timings =
  if !max_minor_words <= 0.0 || timings = [] then []
  else begin
    let total = List.fold_left (fun acc t -> acc +. t.minor_words) 0.0 timings in
    Printf.printf "alloc gate: %.0f minor words (budget %.0f)\n%!" total
      !max_minor_words;
    if total <= !max_minor_words then []
    else
      [
        Printf.sprintf
          "sequential pass allocated %.0f minor words, over the \
           --max-minor-words budget %.0f"
          total !max_minor_words;
      ]
  end

(* The serve scenario's own acceptance gates: outcome partition, service
   invariant, linearizability of the recorded history, bounded queues — a
   broken robustness path fails the bench even if every timing is fine. *)
let serve_gate ((r : Serve.result), (v : Txlin.verdict)) =
  Printf.printf
    "serve scenario: %s %d arrivals -> %d completed / %d shed / %d timeout, \
     gov=%s, invariant %s, lin %s (%d states)\n%!"
    r.Serve.r_service r.Serve.r_arrivals r.Serve.r_completed r.Serve.r_shed
    r.Serve.r_timeout r.Serve.r_final_gov
    (if r.Serve.r_invariant_ok then "ok" else "FAILED")
    (if v.Txlin.v_ok then "ok"
     else if v.Txlin.v_inconclusive then "inconclusive"
     else "FAILED")
    v.Txlin.v_states;
  List.concat
    [
      (if r.Serve.r_partition_ok then []
       else [ "serve: outcome partition violated" ]);
      (if r.Serve.r_invariant_ok then []
       else [ "serve: service invariant violated: " ^ r.Serve.r_invariant_msg ]);
      (if v.Txlin.v_ok then []
       else if v.Txlin.v_inconclusive then
         [ "serve: linearizability check inconclusive: " ^ v.Txlin.v_detail ]
       else [ "serve: history not linearizable: " ^ v.Txlin.v_detail ]);
      (if r.Serve.r_shed + r.Serve.r_timeout > 0 then []
       else [ "serve: 2.5x overload produced no shed or timeout" ]);
    ]

let () =
  let timings, par_jobs, failures = part1 () in
  let failures = failures @ speedup_gate timings in
  let failures = failures @ alloc_gate timings in
  let serve = serve_scenario () in
  let failures = failures @ serve_gate serve in
  let failures = failures @ write_bench_json timings ~par_jobs ~serve in
  if not !skip_bechamel then part2 ();
  if failures <> [] then begin
    Printf.eprintf "\nbench: FAILED\n";
    List.iter (fun m -> Printf.eprintf "  - %s\n" m) (List.rev failures);
    exit 1
  end;
  print_endline "\nbench: done"
